package host

import (
	"errors"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"sdsm/internal/model"
	"sdsm/internal/wire"
)

func newTestNet(t *testing.T, n int) *Net {
	t.Helper()
	nw, err := NewNet(n, model.SP2())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		// An aborted machine may legitimately report dropped frames or
		// latched write errors on Close; a clean run must not.
		if err := nw.Close(); err != nil && !nw.aborted() {
			t.Errorf("Close: %v", err)
		}
	})
	return nw
}

// TestNetMailbox sends typed payloads through the socket switch and
// checks delivery, selective receive, and accounting.
func TestNetMailbox(t *testing.T) {
	nw := newTestNet(t, 3)
	costs := nw.Costs()
	err := nw.Run(func(p Proc) {
		switch p.ID() {
		case 0:
			p.Begin()
			nw.Send(p, 2, 7, []float64{1.5, 2.5}, 16)
			nw.Send(p, 2, 8, nil, 0)
			p.End()
		case 1:
			p.Begin()
			nw.Send(p, 2, 7, []float64{9}, 8)
			p.End()
		case 2:
			p.Begin()
			// Selective receive: tag 8 first, then per-sender tag 7s.
			nw.Recv(p, 0, 8)
			m0 := nw.Recv(p, 0, 7)
			m1 := nw.Recv(p, 1, 7)
			p.End()
			if vals := m0.Payload.([]float64); len(vals) != 2 || vals[1] != 2.5 {
				t.Errorf("node 2 got payload %v from 0", m0.Payload)
			}
			if vals := m1.Payload.([]float64); len(vals) != 1 || vals[0] != 9 {
				t.Errorf("node 2 got payload %v from 1", m1.Payload)
			}
			if m0.Arrival <= 0 || m0.Arrival != costs.SendOverhead+costs.OneWay(16) {
				t.Errorf("arrival %v, want %v", m0.Arrival, costs.SendOverhead+costs.OneWay(16))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.Msgs != 3 || s.Bytes != 24 {
		t.Errorf("stats = %d msgs %d bytes, want 3/24", s.Msgs, s.Bytes)
	}
	if s.Node[2].MsgsRecv != 3 || s.Node[0].MsgsSent != 2 {
		t.Errorf("per-node stats wrong: %+v", s.Node)
	}
}

// TestNetRequestReply runs request/reply exchanges through the service
// loops: the server executes at the target, sees the request payload, and
// its reply (plus service charges) reaches the requester.
func TestNetRequestReply(t *testing.T) {
	nw := newTestNet(t, 2)
	nw.Serve(func(p Proc, at int, req any) (any, int) {
		r := req.(wire.DiffRequest)
		if at != 1 || r.Req != 0 {
			t.Errorf("server saw at=%d req=%d", at, r.Req)
		}
		p.Charge(5 * time.Microsecond)
		return wire.DiffReply{Diffs: []wire.Diff{{Page: r.Pages[0], Creator: 1, To: 3}}}, 64
	})
	err := nw.Run(func(p Proc) {
		if p.ID() != 0 {
			// The target computes while the request is served: the service
			// loop must synchronize with the compute section, not with this
			// body's progress.
			p.BeginCompute()
			p.EndCompute()
			return
		}
		p.Begin()
		pd := nw.StartRequest(p, 1, wire.DiffRequest{Req: 0, Pages: []int32{4}, Applied: [][]int32{{0, 0}}}, 16)
		nw.Await(p, pd)
		p.End()
		reply := pd.Reply.(wire.DiffReply)
		if len(reply.Diffs) != 1 || reply.Diffs[0].Page != 4 || reply.Diffs[0].Creator != 1 {
			t.Errorf("bad reply %+v", reply)
		}
		if pd.Bytes != 64 {
			t.Errorf("reply bytes %d, want 64", pd.Bytes)
		}
		if pd.Arrival <= 0 {
			t.Error("no arrival time on reply")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Proc(1).Now(); got < 5*time.Microsecond {
		t.Errorf("target clock %v missing service charges", got)
	}
}

// TestNetHand stages payloads out of band and takes them after a wake,
// including the stage-to-self case the barrier master uses.
func TestNetHand(t *testing.T) {
	nw := newTestNet(t, 2)
	err := nw.Run(func(p Proc) {
		if p.ID() == 0 {
			p.Begin()
			nw.Hand(p, 1, 3, wire.Grant{Bytes: 12})
			nw.Hand(p, 0, 3, wire.Grant{Bytes: 99})
			g := nw.TakeHand(p, 3).(wire.Grant)
			p.End()
			if g.Bytes != 99 {
				t.Errorf("self hand = %+v", g)
			}
		} else {
			p.Begin()
			g := nw.TakeHand(p, 3).(wire.Grant)
			p.End()
			if g.Bytes != 12 {
				t.Errorf("hand = %+v", g)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNetPeerFailure checks the failure contract: a node panicking aborts
// the machine and unwinds peers blocked on the wire.
func TestNetPeerFailure(t *testing.T) {
	nw := newTestNet(t, 2)
	err := nw.Run(func(p Proc) {
		if p.ID() == 0 {
			p.Begin()
			nw.Recv(p, 1, 1) // never arrives
			p.End()
			return
		}
		panic("node 1 dies")
	})
	if err == nil || !strings.Contains(err.Error(), "node 1 dies") {
		t.Fatalf("Run error = %v, want the peer panic", err)
	}
}

// countFDs returns the number of open file descriptors of this process.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot count fds: %v", err)
	}
	return len(ents)
}

// TestHandshakeTimeout pins the handshake deadline: a peer that accepts
// a connection and then never says hello must produce a clear timeout
// error within the deadline, not hang the machine forever.
func TestHandshakeTimeout(t *testing.T) {
	old := handshakeTimeout
	handshakeTimeout = 50 * time.Millisecond
	defer func() { handshakeTimeout = old }()

	// The silent peer: one end of a pipe that never writes.
	us, them := net.Pipe()
	defer us.Close()
	defer them.Close()

	start := time.Now()
	_, err := readHello(us, 4)
	if err == nil {
		t.Fatal("readHello returned without a peer ever speaking")
	}
	if !strings.Contains(err.Error(), "handshake") {
		t.Errorf("error %q does not name the handshake", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a timeout", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("timeout took %v, deadline was 50ms", e)
	}
}

// TestAbortReleasesResources is the shutdown-path leak regression: after
// a forced abort (a node panicking mid-run) Close must unwind every
// goroutine the machine started — switch, delivery, and service loops,
// and the frame-queue writers — and close every socket. Goroutine and
// fd counts are compared against the pre-machine baseline.
func TestAbortReleasesResources(t *testing.T) {
	baseGo := runtime.NumGoroutine()
	baseFD := countFDs(t)

	nw, err := NewNet(3, model.SP2())
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(p Proc) {
		if p.ID() == 2 {
			panic("injected abort")
		}
		p.Begin()
		nw.Recv(p, 2, 9) // never arrives: peers die blocked on the wire
		p.End()
	})
	if err == nil || !strings.Contains(err.Error(), "injected abort") {
		t.Fatalf("Run error = %v, want the injected abort", err)
	}
	nw.Close() // abort path: conns first, queues after; may report drops

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // finalize dropped conns so fd counts settle
		g, f := runtime.NumGoroutine(), countFDs(t)
		if g <= baseGo && f <= baseFD {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("leak after abort: %d goroutines (base %d), %d fds (base %d)\n%s",
				g, baseGo, f, baseFD, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// shortConn is a net.Conn whose writes stop short without reporting an
// error — the io.Writer contract violation the frame queue must turn
// into a loud failure rather than a silently desynchronized stream.
type shortConn struct {
	net.Conn // nil: only Write is expected to be called
	n        int
}

func (c *shortConn) Write(b []byte) (int, error) {
	if len(b) <= c.n {
		return len(b), nil
	}
	return c.n, nil
}

// TestFrameQueueShortWrite checks the vectored-write guard: a short
// write with no error latches io.ErrShortWrite, onErr fires once, later
// enqueues fail loudly, and Close reports how many frames were dropped
// unwritten instead of letting a lossy shutdown pass silently.
func TestFrameQueueShortWrite(t *testing.T) {
	errCh := make(chan error, 4)
	fq := NewFrameQueue(&shortConn{n: 3}, func(err error) { errCh <- err })

	frame := func() []byte {
		raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{Kind: wire.FMsg, From: 0, To: 1, Tag: 7})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	fq.Enqueue(frame())
	select {
	case err := <-errCh:
		if !errors.Is(err, io.ErrShortWrite) {
			t.Errorf("latched %v, want io.ErrShortWrite", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onErr never fired for a short write")
	}
	if err := fq.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("Flush = %v, want io.ErrShortWrite", err)
	}
	// Frames enqueued after the failure are dropped — loudly.
	if err := fq.Enqueue(frame()); !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("Enqueue after failure = %v, want the latched error", err)
	}
	err := fq.Close()
	if !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("Close = %v, want the latched error", err)
	}
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Errorf("Close error %q does not report the dropped frames", err)
	}
}

// TestFrameQueueCloseAfterClose checks enqueue-after-close fails loudly
// on a healthy queue too.
func TestFrameQueueCloseLoud(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	go func() { // drain whatever arrives
		buf := make([]byte, 4096)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	fq := NewFrameQueue(c1, nil)
	if err := fq.Close(); err != nil {
		t.Fatalf("clean Close = %v", err)
	}
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{Kind: wire.FMsg, From: 0, To: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fq.Enqueue(raw); err == nil {
		t.Error("Enqueue after Close succeeded silently")
	}
	c1.Close()
}
