package host

import (
	"strings"
	"testing"
	"time"

	"sdsm/internal/model"
	"sdsm/internal/wire"
)

func newTestNet(t *testing.T, n int) *Net {
	t.Helper()
	nw, err := NewNet(n, model.SP2())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	return nw
}

// TestNetMailbox sends typed payloads through the socket switch and
// checks delivery, selective receive, and accounting.
func TestNetMailbox(t *testing.T) {
	nw := newTestNet(t, 3)
	costs := nw.Costs()
	err := nw.Run(func(p Proc) {
		switch p.ID() {
		case 0:
			p.Begin()
			nw.Send(p, 2, 7, []float64{1.5, 2.5}, 16)
			nw.Send(p, 2, 8, nil, 0)
			p.End()
		case 1:
			p.Begin()
			nw.Send(p, 2, 7, []float64{9}, 8)
			p.End()
		case 2:
			p.Begin()
			// Selective receive: tag 8 first, then per-sender tag 7s.
			nw.Recv(p, 0, 8)
			m0 := nw.Recv(p, 0, 7)
			m1 := nw.Recv(p, 1, 7)
			p.End()
			if vals := m0.Payload.([]float64); len(vals) != 2 || vals[1] != 2.5 {
				t.Errorf("node 2 got payload %v from 0", m0.Payload)
			}
			if vals := m1.Payload.([]float64); len(vals) != 1 || vals[0] != 9 {
				t.Errorf("node 2 got payload %v from 1", m1.Payload)
			}
			if m0.Arrival <= 0 || m0.Arrival != costs.SendOverhead+costs.OneWay(16) {
				t.Errorf("arrival %v, want %v", m0.Arrival, costs.SendOverhead+costs.OneWay(16))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.Msgs != 3 || s.Bytes != 24 {
		t.Errorf("stats = %d msgs %d bytes, want 3/24", s.Msgs, s.Bytes)
	}
	if s.Node[2].MsgsRecv != 3 || s.Node[0].MsgsSent != 2 {
		t.Errorf("per-node stats wrong: %+v", s.Node)
	}
}

// TestNetRequestReply runs request/reply exchanges through the service
// loops: the server executes at the target, sees the request payload, and
// its reply (plus service charges) reaches the requester.
func TestNetRequestReply(t *testing.T) {
	nw := newTestNet(t, 2)
	nw.Serve(func(p Proc, at int, req any) (any, int) {
		r := req.(wire.DiffRequest)
		if at != 1 || r.Req != 0 {
			t.Errorf("server saw at=%d req=%d", at, r.Req)
		}
		p.Charge(5 * time.Microsecond)
		return wire.DiffReply{Diffs: []wire.Diff{{Page: r.Pages[0], Creator: 1, To: 3}}}, 64
	})
	err := nw.Run(func(p Proc) {
		if p.ID() != 0 {
			// The target computes while the request is served: the service
			// loop must synchronize with the compute section, not with this
			// body's progress.
			p.BeginCompute()
			p.EndCompute()
			return
		}
		p.Begin()
		pd := nw.StartRequest(p, 1, wire.DiffRequest{Req: 0, Pages: []int32{4}, Applied: [][]int32{{0, 0}}}, 16)
		nw.Await(p, pd)
		p.End()
		reply := pd.Reply.(wire.DiffReply)
		if len(reply.Diffs) != 1 || reply.Diffs[0].Page != 4 || reply.Diffs[0].Creator != 1 {
			t.Errorf("bad reply %+v", reply)
		}
		if pd.Bytes != 64 {
			t.Errorf("reply bytes %d, want 64", pd.Bytes)
		}
		if pd.Arrival <= 0 {
			t.Error("no arrival time on reply")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Proc(1).Now(); got < 5*time.Microsecond {
		t.Errorf("target clock %v missing service charges", got)
	}
}

// TestNetHand stages payloads out of band and takes them after a wake,
// including the stage-to-self case the barrier master uses.
func TestNetHand(t *testing.T) {
	nw := newTestNet(t, 2)
	err := nw.Run(func(p Proc) {
		if p.ID() == 0 {
			p.Begin()
			nw.Hand(p, 1, 3, wire.Grant{Bytes: 12})
			nw.Hand(p, 0, 3, wire.Grant{Bytes: 99})
			g := nw.TakeHand(p, 3).(wire.Grant)
			p.End()
			if g.Bytes != 99 {
				t.Errorf("self hand = %+v", g)
			}
		} else {
			p.Begin()
			g := nw.TakeHand(p, 3).(wire.Grant)
			p.End()
			if g.Bytes != 12 {
				t.Errorf("hand = %+v", g)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNetPeerFailure checks the failure contract: a node panicking aborts
// the machine and unwinds peers blocked on the wire.
func TestNetPeerFailure(t *testing.T) {
	nw := newTestNet(t, 2)
	err := nw.Run(func(p Proc) {
		if p.ID() == 0 {
			p.Begin()
			nw.Recv(p, 1, 1) // never arrives
			p.End()
			return
		}
		panic("node 1 dies")
	})
	if err == nil || !strings.Contains(err.Error(), "node 1 dies") {
		t.Fatalf("Run error = %v, want the peer panic", err)
	}
}
