package host

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealRunsAllProcs(t *testing.T) {
	h := NewReal(8)
	var ran atomic.Int32
	err := h.Run(func(p Proc) {
		ran.Add(1)
		p.Advance(time.Duration(p.ID()) * time.Microsecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d bodies, want 8", ran.Load())
	}
	if got := h.Proc(3).Now(); got != 3*time.Microsecond {
		t.Errorf("proc 3 clock = %v, want 3µs", got)
	}
}

func TestRealBlockWake(t *testing.T) {
	h := NewReal(2)
	var order []int
	err := h.Run(func(p Proc) {
		if p.ID() == 0 {
			p.Begin()
			order = append(order, 0)
			p.Block("handoff")
			order = append(order, 2)
			p.End()
			return
		}
		// Give proc 0 time to block, then wake it with a later clock.
		time.Sleep(10 * time.Millisecond)
		p.Begin()
		order = append(order, 1)
		p.Wake(h.Proc(0), 50*time.Microsecond)
		p.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", order)
	}
	if got := h.Proc(0).Now(); got != 50*time.Microsecond {
		t.Errorf("woken clock = %v, want 50µs (wake must advance it)", got)
	}
}

func TestRealSetClockIsMax(t *testing.T) {
	h := NewReal(1)
	err := h.Run(func(p Proc) {
		p.Advance(100 * time.Microsecond)
		p.SetClock(40 * time.Microsecond) // earlier: no-op
		if p.Now() != 100*time.Microsecond {
			t.Errorf("SetClock moved clock backwards to %v", p.Now())
		}
		p.SetClock(200 * time.Microsecond)
		if p.Now() != 200*time.Microsecond {
			t.Errorf("SetClock did not advance: %v", p.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRealPanicPropagatesAndUnblocksPeers(t *testing.T) {
	h := NewReal(2)
	err := h.Run(func(p Proc) {
		if p.ID() == 0 {
			p.Begin()
			defer p.End()
			p.Block("never woken") // peer's panic must unwind this
			return
		}
		time.Sleep(5 * time.Millisecond)
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the peer's panic", err)
	}
}

// TestRealHoldExcludesCompute asserts the Hold/compute-section contract:
// a Hold observes either none or all of a compute section's writes that
// started before it, never a torn prefix racing with it. The race
// detector (CI runs this package with -race) is the real enforcement;
// the assertion here checks mutual exclusion semantically.
func TestRealHoldExcludesCompute(t *testing.T) {
	h := NewReal(2)
	data := make([]int, 1024)
	err := h.Run(func(p Proc) {
		if p.ID() == 0 {
			for iter := 0; iter < 100; iter++ {
				p.BeginCompute()
				for i := range data {
					data[i] = iter
				}
				p.EndCompute()
			}
			return
		}
		for iter := 0; iter < 100; iter++ {
			p.Begin()
			p.Hold(h.Proc(0), func() {
				first := data[0]
				for i, v := range data {
					if v != first {
						t.Errorf("torn read under Hold: data[0]=%d data[%d]=%d", first, i, v)
						return
					}
				}
			})
			p.End()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRealDoubleWakePanics(t *testing.T) {
	h := NewReal(2)
	err := h.Run(func(p Proc) {
		if p.ID() == 1 {
			return // never blocks, never drains its wake buffer
		}
		p.Begin()
		defer p.End()
		p.Wake(h.Proc(1), 0)
		p.Wake(h.Proc(1), 0) // second undrained wake: a protocol bug
	})
	if err == nil || !strings.Contains(err.Error(), "double wake") {
		t.Fatalf("err = %v, want double-wake panic", err)
	}
}
