package host

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"sdsm/internal/obs"
	"sdsm/internal/wire"
)

// FrameQueue is the per-connection outbound half of the zero-allocation
// wire path: an unbounded FIFO of encoded frames drained by a single
// writer goroutine. A barrier or lock release produces a flurry of
// frames for the same connection (grants, departures, diff replies,
// adaptive updates); enqueuing is a mutex-guarded append, and the writer
// coalesces everything queued at wakeup into one scatter-gather write
// (net.Buffers, a writev on socket conns) — one syscall per flush
// instead of one per frame.
//
// Contract:
//
//   - Enqueue takes ownership of raw: the queue recycles it with
//     wire.PutBuf after the write, so callers must encode into pooled
//     storage (wire.GetBuf) and never touch the slice again.
//   - Frames enqueued on one queue are written in FIFO order; the
//     coalesced flush preserves per-connection ordering exactly. No
//     cross-queue ordering is promised — none existed when every frame
//     was a separate locked Write either.
//   - Coalescing moves bytes, not time: all virtual-time charges and
//     arrival stamps are fixed by the sender before Enqueue, so batching
//     is invisible to the cost model (DESIGN.md, "Zero-allocation wire
//     path").
//
// Failure: the first write error is latched; the queue calls onErr once
// (from the writer goroutine), drops subsequent frames, and every later
// Enqueue returns the latched error so protocol callers can unwind. A
// short vectored write without an error — which would leave a frame
// split mid-stream and desynchronize the connection — latches
// io.ErrShortWrite the same way. Frames dropped after a failure are
// counted, and Close reports the count: a shutdown that lost frames is
// loud, never silent.
type FrameQueue struct {
	w     net.Conn
	onErr func(error)

	mu       sync.Mutex
	cond     *sync.Cond
	q        [][]byte
	inflight int
	err      error
	dropped  int // frames recycled unwritten after err latched
	closed   bool
	done     chan struct{}

	// frames/flushes, when non-nil, count written frames and coalesced
	// flushes for the observability layer (SetObs). Nil when tracing is
	// off: the writer loop then performs no extra work.
	frames  *obs.Counter
	flushes *obs.Counter
}

// SetObs attaches frame/flush counters (observability only).
func (fq *FrameQueue) SetObs(frames, flushes *obs.Counter) {
	fq.mu.Lock()
	fq.frames, fq.flushes = frames, flushes
	fq.mu.Unlock()
}

// errQueueClosed is returned by Enqueue after Close.
var errQueueClosed = errors.New("host: frame queue closed")

// NewFrameQueue starts a queue draining into w. onErr (optional) is
// invoked once, from the writer goroutine, when a write first fails.
func NewFrameQueue(w net.Conn, onErr func(error)) *FrameQueue {
	fq := &FrameQueue{w: w, onErr: onErr, done: make(chan struct{})}
	fq.cond = sync.NewCond(&fq.mu)
	go fq.writerLoop()
	return fq
}

// Enqueue appends one encoded frame to the outbound queue, transferring
// ownership of raw to the queue. It returns the latched write error, if
// any — the frame is dropped (and recycled) in that case.
func (fq *FrameQueue) Enqueue(raw []byte) error {
	fq.mu.Lock()
	if fq.err != nil || fq.closed {
		err := fq.err
		fq.mu.Unlock()
		wire.PutBuf(raw)
		if err == nil {
			err = errQueueClosed
		}
		return err
	}
	fq.q = append(fq.q, raw)
	fq.cond.Signal()
	fq.mu.Unlock()
	return nil
}

// Flush blocks until every frame enqueued so far has been handed to the
// connection (or a write error is latched, which it returns).
func (fq *FrameQueue) Flush() error {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for (len(fq.q) > 0 || fq.inflight > 0) && fq.err == nil {
		fq.cond.Wait()
	}
	return fq.err
}

// Close drains the queue (pending frames are still written, unless an
// error is latched, in which case they are dropped), stops the writer
// goroutine, and waits for it. It returns the latched write error,
// wrapped with the number of frames that were dropped unwritten, so a
// lossy shutdown cannot pass silently. Idempotent; it does not close
// the underlying connection.
func (fq *FrameQueue) Close() error {
	fq.mu.Lock()
	if !fq.closed {
		fq.closed = true
		fq.cond.Broadcast()
	}
	fq.mu.Unlock()
	<-fq.done
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.err != nil && fq.dropped > 0 {
		return fmt.Errorf("host: frame queue dropped %d frame(s): %w", fq.dropped, fq.err)
	}
	return fq.err
}

// writerLoop drains the whole queue per wakeup into one vectored write.
// The queue slice and the batch slice are double-buffered (swapped each
// round) and the net.Buffers header slice is rebuilt from scratch
// storage, so a steady-state flush allocates nothing.
func (fq *FrameQueue) writerLoop() {
	defer close(fq.done)
	var batch [][]byte
	var scratch [][]byte
	// bufs lives outside the loop: WriteTo takes its address, which would
	// heap-allocate the slice header on every flush if it were loop-local.
	var bufs net.Buffers
	failed := false
	fq.mu.Lock()
	for {
		for len(fq.q) == 0 && !fq.closed {
			fq.cond.Wait()
		}
		if len(fq.q) == 0 { // closed and drained
			fq.mu.Unlock()
			return
		}
		batch, fq.q = fq.q, batch[:0]
		fq.inflight = len(batch)
		if fq.frames != nil {
			fq.frames.Add(int64(len(batch)))
			fq.flushes.Inc()
		}
		fq.mu.Unlock()

		lost := len(batch) // frames not (fully) written this round
		if !failed {
			// WriteTo consumes its receiver — on partial writes it
			// advances the slice entries in place — so it runs on a
			// scratch copy of the headers; batch keeps the originals
			// for recycling.
			scratch = append(scratch[:0], batch...)
			var total int64
			for _, b := range scratch {
				total += int64(len(b))
			}
			bufs = net.Buffers(scratch)
			n, err := bufs.WriteTo(fq.w)
			if err == nil && n != total {
				// A writer that stops short without erroring would leave
				// the last frame split mid-stream; treat it as a failure
				// so the connection is abandoned, not desynchronized.
				err = io.ErrShortWrite
			}
			if err != nil {
				failed = true
				fq.mu.Lock()
				fq.err = err
				fq.cond.Broadcast()
				fq.mu.Unlock()
				if fq.onErr != nil {
					fq.onErr(err)
				}
			} else {
				lost = 0
			}
		}
		for i, b := range batch {
			wire.PutBuf(b)
			batch[i] = nil
		}
		fq.mu.Lock()
		fq.dropped += lost
		fq.inflight = 0
		fq.cond.Broadcast()
	}
}
