// Package host defines the platform seam between the DSM protocol stack
// (tmk), the message-passing layer (mp), and the applications on one side,
// and a concrete execution backend on the other.
//
// A backend provides two things:
//
//   - A Host: a fixed set of processors with virtual clocks and the
//     blocking primitives the protocol layers are written against
//     (Advance/Charge, Block/Wake, Yield).
//   - A Transport: the interconnect carrying mailbox messages and
//     request/reply (RPC) exchanges with latency, bandwidth, and CPU
//     overhead accounting (package cluster is the reference
//     implementation, usable on any Host).
//
// Two hosts exist:
//
//   - The deterministic discrete-event engine (package sim), which admits
//     exactly one runnable processor at a time and reproduces the paper's
//     virtual-time numbers bit for bit regardless of the Go scheduler.
//   - The real-concurrency host (NewReal, this package), where each
//     processor is a goroutine running genuinely in parallel on the
//     machine's cores. Virtual time is still accounted (atomically) but no
//     longer serializes execution.
//
// # The protocol-section contract
//
// The DSM protocol mutates shared state (mailboxes, lock queues, barrier
// episodes, remote diff caches) under the historical assumption that only
// one processor runs at a time. The seam preserves that assumption without
// giving up parallelism through three bracketing primitives, all no-ops on
// the sequential sim host:
//
//   - Begin/End delimit a protocol section. The real host backs them with
//     a single host-wide token mutex: protocol code on different nodes is
//     mutually excluded, exactly as under the sim engine. Block releases
//     the token while suspended and reacquires it on wake, so waiting
//     inside a protocol section (locks, barriers, message receive) cannot
//     deadlock the machine.
//   - BeginCompute/EndCompute delimit a local compute section: a stretch
//     of application code that writes the node's own shared-memory image
//     without entering the protocol. The real host backs them with a
//     per-processor lock.
//   - Hold(q, fn) runs fn while q is excluded from compute sections. The
//     protocol uses it when servicing a request against another node's
//     state (diff creation reads the target's memory image): on the real
//     host, the target may be mid-computation, and Hold provides the
//     mutual exclusion — and the happens-before edge — that the sim host
//     gets for free from its global serialization.
//
// Lock order is token before compute lock; compute sections never enter
// protocol sections (callers end compute before calling the run-time, see
// the interp package), so the order is acyclic and the real host is
// deadlock-free wherever the sim host is.
package host

import (
	"time"

	"sdsm/internal/model"
)

// Proc is one virtual processor as seen by the protocol stack and the
// applications. All methods except Charge, Wake, and Hold must be called
// from the goroutine running the processor's body.
type Proc interface {
	// ID is the processor number, 0..N-1.
	ID() int
	// Now returns the processor's current virtual time.
	Now() time.Duration
	// Advance charges d of virtual time, yielding on hosts that
	// schedule by virtual time.
	Advance(d time.Duration)
	// Charge adds d to the processor's clock without yielding. It may be
	// called on any processor (including a blocked one) to account for
	// overhead imposed remotely, such as servicing an interrupt.
	Charge(d time.Duration)
	// Yield gives other processors a chance to run.
	Yield()
	// Block suspends the processor until another processor calls Wake on
	// it. reason appears in deadlock reports. Inside a protocol section,
	// the section token is released while blocked.
	Block(reason string)
	// Wake makes a blocked processor runnable, moving its clock forward
	// to at if at is later. Wakes are direct handoffs, never broadcasts;
	// waking a non-blocked processor panics.
	Wake(q Proc, at time.Duration)
	// SetClock forces the clock to at if at is later (synchronization
	// objects computing a common departure time).
	SetClock(at time.Duration)

	// Begin enters a protocol section (see the package comment). No-op on
	// the deterministic sim host.
	Begin()
	// End leaves a protocol section.
	End()
	// BeginCompute enters a local compute section.
	BeginCompute()
	// EndCompute leaves a local compute section.
	EndCompute()
	// Hold runs fn while q is held out of compute sections. Must be
	// called inside a protocol section.
	Hold(q Proc, fn func())
}

// Host is one machine of N processors.
type Host interface {
	// N returns the number of processors.
	N() int
	// Proc returns processor i.
	Proc(i int) Proc
	// Run executes body once per processor and returns when all have
	// finished, with an error on panic or (where detectable) deadlock.
	Run(body func(p Proc)) error
}

// Tag distinguishes message classes within a mailbox.
type Tag int

// AnySender matches messages from every sender in Recv.
const AnySender = -1

// Msg is a delivered mailbox message.
type Msg struct {
	From, To int
	Tag      Tag
	Payload  any
	Bytes    int
	Arrival  time.Duration
}

// Server handles request/reply exchanges at a target node: it receives
// the destination node id and the decoded request payload (a wire value,
// never a pointer into the requester's state) and returns the reply
// payload with its accounted size. The DSM run-time registers exactly one
// server per transport (tmk's diff server). p is a processor handle the
// server may use for Hold; on in-process transports it is the requesting
// processor, on socket transports the target's own (whose compute
// exclusion the service loop already holds).
type Server func(p Proc, at int, req any) (resp any, respBytes int)

// Pending is an in-flight request/reply exchange. Reply, Arrival, and
// Bytes are valid after Await/AwaitAll returns it.
type Pending struct {
	// Reply is the decoded reply payload.
	Reply any
	// Arrival is the virtual time the reply reaches the requester.
	Arrival time.Duration
	// Bytes is the accounted reply size.
	Bytes int
	// resolver, when non-nil, blocks until the reply is available and
	// fills the fields above (socket transports; nil when the exchange
	// completed at StartRequest). An interface rather than a closure so
	// transports embedding Pending in their request state install it
	// without allocating.
	resolver Resolver
}

// Resolver is the completion wait hook a transport installs on a Pending
// whose reply arrives asynchronously.
type Resolver interface {
	// ResolveReply blocks p until the exchange has completed and fills
	// the Pending's reply fields.
	ResolveReply(p Proc)
}

// Resolve waits until the exchange has completed (no-op on transports
// that complete requests synchronously). Await calls it; transports set
// the hook via SetResolver.
func (pd *Pending) Resolve(p Proc) {
	if pd.resolver != nil {
		r := pd.resolver
		pd.resolver = nil
		r.ResolveReply(p)
	}
}

// SetResolver installs the completion wait hook (transport internal).
func (pd *Pending) SetResolver(r Resolver) { pd.resolver = r }

// TakeMatch removes the earliest-arriving message matching (from, tag)
// from box, returning the message and the shortened box. It is the one
// mailbox-matching rule every transport shares — selective receive by
// sender and tag, ties broken by buffer order — so receive-any semantics
// cannot drift between backends.
func TakeMatch(box []Msg, from int, tag Tag) (Msg, []Msg, bool) {
	best := -1
	for i, m := range box {
		if m.Tag != tag || (from != AnySender && m.From != from) {
			continue
		}
		if best == -1 || m.Arrival < box[best].Arrival {
			best = i
		}
	}
	if best == -1 {
		return Msg{}, box, false
	}
	m := box[best]
	return m, append(box[:best], box[best+1:]...), true
}

// AwaitInArrivalOrder completes a set of pending exchanges in ascending
// virtual-arrival order via await (the receive overheads serialize at
// the requester). Exchanges must already be resolved where resolution is
// asynchronous.
func AwaitInArrivalOrder(p Proc, pds []*Pending, await func(Proc, *Pending)) {
	// The scratch copy (the caller's order must be preserved) lives on the
	// stack for the common small fan-outs.
	var stack [16]*Pending
	var rest []*Pending
	if len(pds) <= len(stack) {
		rest = append(stack[:0], pds...)
	} else {
		rest = append([]*Pending(nil), pds...)
	}
	for len(rest) > 0 {
		best := 0
		for i := range rest {
			if rest[i].Arrival < rest[best].Arrival {
				best = i
			}
		}
		await(p, rest[best])
		rest = append(rest[:best], rest[best+1:]...)
	}
}

// NodeStats counts traffic at one node.
type NodeStats struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
}

// Stats aggregates network traffic. The DSM statistics the paper reports
// ("msg" and "data" in Table 2) are derived from these counters.
type Stats struct {
	Msgs  int64
	Bytes int64
	Node  []NodeStats
}

// Account tallies one message from node from to node to. It is the one
// accounting rule every transport shares, so the backends' traffic
// numbers cannot drift apart; callers synchronize where counters are
// shared between goroutines.
func (s *Stats) Account(from, to, bytes int) {
	s.Msgs++
	s.Bytes += int64(bytes)
	s.Node[from].MsgsSent++
	s.Node[from].BytesSent += int64(bytes)
	s.Node[to].MsgsRecv++
	s.Node[to].BytesRecv += int64(bytes)
}

// Transport is the interconnect seam: everything the DSM run-time and the
// message-passing layer need from the wire. Every payload that crosses it
// must be a wire value (package wire) or a plain data slice — never a
// pointer into another node's protocol state — so that socket transports
// can encode it. Package cluster implements the seam in-process over any
// Host; NewNet implements it over loopback sockets.
//
// Transport methods must be called inside a protocol section.
type Transport interface {
	// Costs returns the platform cost model in force.
	Costs() model.Costs
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
	// ResetStats zeroes all counters.
	ResetStats()

	// Send transmits payload to node to; the sender pays send overhead
	// and the message arrives after wire latency plus bandwidth time.
	Send(p Proc, to int, tag Tag, payload any, bytes int)
	// SendShared transmits one payload to several recipients charging the
	// sender's injection overhead once (switch-assisted broadcast).
	SendShared(p Proc, tos []int, tag Tag, payload any, bytes int)
	// Broadcast sends payload to every other node, serializing the
	// per-message send overhead at the sender.
	Broadcast(p Proc, tag Tag, payload any, bytes int)
	// Recv blocks until a matching message is available and delivers the
	// earliest-arriving match.
	Recv(p Proc, from int, tag Tag) Msg
	// Message accounts for a protocol message between two nodes that may
	// both differ from the caller (multi-hop exchanges such as lock
	// forwarding) and returns the time the receiver has fielded it.
	Message(from, to int, depart time.Duration, bytes int) time.Duration

	// Serve registers the request handler invoked at the target of
	// Request exchanges. Must be called once, before the host runs.
	Serve(fn Server)
	// StartRequest issues a request/reply exchange to node to and returns
	// without waiting for the requester's side of the reply (asynchronous
	// data fetching). The request payload must be a wire value.
	StartRequest(p Proc, to int, req any, reqBytes int) *Pending
	// Await advances p to the completion of one in-flight exchange; the
	// Pending's reply fields are valid afterwards.
	Await(p Proc, pd *Pending)
	// AwaitAll completes a set of in-flight exchanges in arrival order.
	AwaitAll(p Proc, pds []*Pending)

	// Hand stages a protocol payload for node to, out of band of the
	// mailbox: lock grants and barrier departures are constructed by the
	// protocol (which accounts their cost via Message) and consumed by the
	// recipient after it is woken. On socket transports the payload
	// crosses the wire encoded.
	Hand(p Proc, to int, slot Tag, payload any)
	// TakeHand retrieves the payload staged for the caller in slot,
	// waiting for it to arrive where delivery is asynchronous.
	TakeHand(p Proc, slot Tag) any
}
