// Package sdsm's top-level benchmarks regenerate every table and figure of
// the paper's evaluation. Each benchmark runs the corresponding experiment
// once per iteration and reports the headline quantity as custom metrics
// (virtual speedups, reduction percentages, primitive latencies), so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation and cmd/sdsm-experiments pretty-prints it.
// EXPERIMENTS.md records a reference run next to the paper's numbers.
// The sweep benchmarks fan their independent runs across all cores via the
// harness's experiment scheduler; virtual-time metrics are unaffected.
//
// The BenchmarkWire* benchmarks pin the wall-clock cost of the wire
// codec's hot paths (diff payload encode/decode, full run sweeps); the
// protocol-side hot paths (diff apply, serve, write-notice encode) are
// benchmarked in internal/tmk. Together they are the baseline for later
// performance PRs against the net backend.
package sdsm_test

import (
	"fmt"
	"runtime"
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
	"sdsm/internal/tmk"
	"sdsm/internal/wire"
)

// runBarrierFlurry is the net backend's steady-state barrier workload: n
// nodes each write a slice of their own page, barrier, read a neighbour's
// slice (a demand diff fetch), and barrier again, iters times. Every
// epoch exercises the full wire hot path — twin/diff creation, write
// notices, the departure flurry the master ships to every node, and one
// diff request/reply RPC per node — which is exactly the path the
// zero-allocation work targets.
func runBarrierFlurry(n, iters int) error {
	nw, err := host.NewNet(n, model.SP2())
	if err != nil {
		return err
	}
	defer nw.Close()
	layout := shm.NewLayout()
	arr := layout.Alloc("mem", n*shm.PageWords)
	sys := tmk.New(nw, nw, layout)
	return sys.Run(func(nd *tmk.Node) {
		const words = 64
		for it := 0; it < iters; it++ {
			lo := arr.Base + nd.ID*shm.PageWords
			nd.Mem.EnsureWrite(nd.Proc(), shm.Region{Lo: lo, Hi: lo + words})
			nd.Proc().BeginCompute()
			for w := lo; w < lo+words; w++ {
				nd.Mem.Data()[w] = float64(it + w)
			}
			nd.Proc().EndCompute()
			nd.Barrier(1)
			peer := arr.Base + ((nd.ID+1)%n)*shm.PageWords
			nd.Mem.EnsureRead(nd.Proc(), shm.Region{Lo: peer, Hi: peer + words})
			nd.Barrier(2)
		}
	})
}

// flurryAllocsPerEpoch measures the machine-wide heap allocations one
// steady-state epoch costs: two runs differing only in iteration count
// cancel the setup/teardown allocations, leaving the per-epoch rate. The
// Mallocs counter is process-global, so callers must not run anything
// concurrently.
func flurryAllocsPerEpoch(tb testing.TB, n, base, extra int) float64 {
	run := func(iters int) uint64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if err := runBarrierFlurry(n, iters); err != nil {
			tb.Fatal(err)
		}
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	short := run(base)
	long := run(base + extra)
	if long < short {
		return 0
	}
	return float64(long-short) / float64(extra)
}

// BenchmarkNetBarrierFlurry measures the wall and allocation cost of one
// barrier epoch (write + barrier + remote read + barrier, all nodes) on
// the net backend.
func BenchmarkNetBarrierFlurry(b *testing.B) {
	b.ReportAllocs()
	if err := runBarrierFlurry(4, b.N); err != nil {
		b.Fatal(err)
	}
}

// benchDiffReply builds a diff-reply frame like the ones the net backend
// ships on every fault: two page diffs of short runs, ~1.5 KB of payload.
func benchDiffReply() *wire.Frame {
	mk := func(page, creator int32) wire.Diff {
		d := wire.Diff{
			Page: page, Creator: creator, From: 4, To: 5,
			Covers: []int32{5, 3, 7, 1, 0, 2, 4, 9},
		}
		for off := int32(0); off < 512; off += 8 {
			d.Runs = append(d.Runs, wire.Run{Off: off, Vals: []float64{1, 2, 3, 4}})
		}
		return d
	}
	return &wire.Frame{
		Kind: wire.FReply, From: 1, To: 0, Tag: 9, Bytes: 1552, Time: 123456,
		Payload: wire.DiffReply{Diffs: []wire.Diff{mk(3, 1), mk(4, 1)}},
	}
}

// BenchmarkWireEncodeDiffReply measures encoding the dominant net-backend
// payload (a diff fetch reply).
func BenchmarkWireEncodeDiffReply(b *testing.B) {
	f := benchDiffReply()
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendFrame(buf[:0], f)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkWireEncodePooled measures the production encode path: the
// same diff-reply payload through the frame buffer freelist, as the net
// backend's protocol goroutine encodes every outgoing frame. Steady
// state is allocation-free (pinned by TestWireEncodePooledAllocs).
func BenchmarkWireEncodePooled(b *testing.B) {
	f := benchDiffReply()
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		buf := wire.GetBuf()
		enc, err := wire.AppendFrame(buf[:0], f)
		if err != nil {
			b.Fatal(err)
		}
		n = len(enc)
		wire.PutBuf(enc)
	}
	b.SetBytes(int64(n))
}

// BenchmarkWireDecodeDiffReply measures the matching decode.
func BenchmarkWireDecodeDiffReply(b *testing.B) {
	buf, err := wire.AppendFrame(nil, benchDiffReply())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := wire.ParseFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireGrantRoundTrip measures encode+decode of a lock grant with
// write notices, the per-synchronization payload of the wire backend.
func BenchmarkWireGrantRoundTrip(b *testing.B) {
	g := wire.Grant{Bytes: 440}
	for idx := int32(1); idx <= 10; idx++ {
		g.Intervals = append(g.Intervals, wire.OwnedInterval{
			Owner: idx % 8, Idx: idx,
			IV: wire.Interval{
				Pages: []wire.PageRef{{Page: idx}, {Page: idx + 1, Whole: idx%3 == 0}},
				VC:    []int32{1, 2, 3, 4, 5, 6, 7, 8},
			},
		})
	}
	f := &wire.Frame{Kind: wire.FHand, From: 2, To: 5, Tag: 1, Payload: g}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := wire.AppendFrame(nil, f)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.ParseFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPushedGrant builds a grant like the ones the lock-scope adaptive
// protocol ships on every bound hand-off: a few write notices plus
// piggybacked diffs for the predicted critical-section working set
// (~two pages of short runs).
func benchPushedGrant() *wire.Frame {
	g := wire.Grant{Bytes: 2160}
	for idx := int32(1); idx <= 4; idx++ {
		g.Intervals = append(g.Intervals, wire.OwnedInterval{
			Owner: idx % 8, Idx: idx,
			IV: wire.Interval{
				Pages: []wire.PageRef{{Page: idx}, {Page: idx + 1}},
				VC:    []int32{1, 2, 3, 4, 5, 6, 7, 8},
			},
		})
	}
	var pushed []wire.Diff
	for page := int32(3); page <= 4; page++ {
		d := wire.Diff{
			Page: page, Creator: 2, From: 4, To: 5,
			Covers: []int32{5, 3, 7, 1, 0, 2, 4, 9},
		}
		for off := int32(0); off < 512; off += 16 {
			d.Runs = append(d.Runs, wire.Run{Off: off, Vals: []float64{1, 2, 3, 4}})
		}
		pushed = append(pushed, d)
	}
	// The two pages share one header: they coalesce into a single section
	// span, as buildGrant ships them since wire version 4.
	g.Pushed = wire.CoalesceDiffs(pushed)
	return &wire.Frame{Kind: wire.FHand, From: 2, To: 5, Tag: 1, Payload: g}
}

// BenchmarkWireEncodeGrantPiggyback measures encoding the lock-scope
// adaptive grant (write notices + piggybacked working-set diffs), the
// payload every bound lock hand-off ships on the net backend.
func BenchmarkWireEncodeGrantPiggyback(b *testing.B) {
	f := benchPushedGrant()
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendFrame(buf[:0], f)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkWireDecodeGrantPiggyback measures the matching decode.
func BenchmarkWireDecodeGrantPiggyback(b *testing.B) {
	buf, err := wire.AppendFrame(nil, benchPushedGrant())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := wire.ParseFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro measures the Section 5 primitives (365 µs roundtrip,
// 427 µs lock acquire, 893 µs barrier).
func BenchmarkMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := harness.Micro()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(m.RoundTrip.Microseconds()), "roundtrip-µs")
			b.ReportMetric(float64(m.LockAcquire.Microseconds()), "lock-µs")
			b.ReportMetric(float64(m.Barrier8.Microseconds()), "barrier8-µs")
		}
	}
}

// BenchmarkTable1 regenerates the uniprocessor execution times.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Measured.Seconds(), r.App+"/"+string(r.Set)+"-s")
			}
		}
	}
}

// BenchmarkTable2 regenerates the segv/msg/data reductions of Opt vs Base.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(harness.DefaultProcs, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MsgPct, r.App+"/"+string(r.Set)+"-msg%")
			}
		}
	}
}

// BenchmarkFig5 regenerates the four-system speedup comparison; one
// sub-benchmark per application and data set.
func BenchmarkFig5(b *testing.B) {
	for _, a := range apps.Registry() {
		for _, set := range []apps.DataSet{harness.Large, harness.Small} {
			a, set := a, set
			b.Run(fmt.Sprintf("%s/%s", a.Name, set), func(b *testing.B) {
				uni, err := harness.UniTime(a, set, model.SP2())
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					for _, sys := range []harness.SystemKind{harness.Base, harness.Opt, harness.XHPF, harness.PVMe} {
						if sys == harness.XHPF && !a.XHPF {
							continue
						}
						res, err := harness.Run(harness.Config{App: a, Set: set, System: sys, Procs: harness.DefaultProcs})
						if err != nil {
							b.Fatal(err)
						}
						if i == 0 {
							b.ReportMetric(harness.Speedup(uni, res.Time), string(sys)+"-speedup")
						}
					}
				}
			})
		}
	}
}

// BenchmarkFig6 regenerates the optimization-level sweep.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig6(harness.DefaultProcs, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Levels[4], r.App+"/"+string(r.Set)+"-best")
			}
		}
	}
}

// BenchmarkFig7 regenerates the synchronous vs asynchronous comparison.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig7(harness.DefaultProcs, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Async, r.App+"-async")
				b.ReportMetric(r.Sync, r.App+"-sync")
			}
		}
	}
}

// BenchmarkAblationProcs extends the evaluation beyond the paper's 8
// processors (its Section 6.4 conjectures Push grows more beneficial at
// larger counts): the optimized Jacobi at 2-16 processors.
func BenchmarkAblationProcs(b *testing.B) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	uni, err := harness.UniTime(a, harness.Large, model.SP2())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("procs-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Config{App: a, Set: harness.Large, System: harness.Opt, Procs: n})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(harness.Speedup(uni, res.Time), "speedup")
				}
			}
		})
	}
}

// BenchmarkAblationPushAtScale quantifies the Push-vs-barrier gain for
// Jacobi as the processor count grows (the design choice DESIGN.md calls
// out: barrier replacement matters when synchronization is the bottleneck).
func BenchmarkAblationPushAtScale(b *testing.B) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("procs-%d", n), func(b *testing.B) {
			prog := a.Build(n)
			params := prog.Prepare(a.Sets[harness.Small], n)
			levels := harness.Levels(a, n, params)
			for i := 0; i < b.N; i++ {
				noPush, err := harness.Run(harness.Config{App: a, Set: harness.Small, System: harness.Opt, Procs: n, Level: levels[3]})
				if err != nil {
					b.Fatal(err)
				}
				withPush, err := harness.Run(harness.Config{App: a, Set: harness.Small, System: harness.Opt, Procs: n, Level: levels[4]})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					gain := 100 * (1 - float64(withPush.Time)/float64(noPush.Time))
					b.ReportMetric(gain, "push-gain-%")
				}
			}
		})
	}
}
