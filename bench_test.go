// Package sdsm's top-level benchmarks regenerate every table and figure of
// the paper's evaluation. Each benchmark runs the corresponding experiment
// once per iteration and reports the headline quantity as custom metrics
// (virtual speedups, reduction percentages, primitive latencies), so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation and cmd/sdsm-experiments pretty-prints it.
// EXPERIMENTS.md records a reference run next to the paper's numbers.
// The sweep benchmarks fan their independent runs across all cores via the
// harness's experiment scheduler; virtual-time metrics are unaffected.
package sdsm_test

import (
	"fmt"
	"runtime"
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/model"
)

// BenchmarkMicro measures the Section 5 primitives (365 µs roundtrip,
// 427 µs lock acquire, 893 µs barrier).
func BenchmarkMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := harness.Micro()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(m.RoundTrip.Microseconds()), "roundtrip-µs")
			b.ReportMetric(float64(m.LockAcquire.Microseconds()), "lock-µs")
			b.ReportMetric(float64(m.Barrier8.Microseconds()), "barrier8-µs")
		}
	}
}

// BenchmarkTable1 regenerates the uniprocessor execution times.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Measured.Seconds(), r.App+"/"+string(r.Set)+"-s")
			}
		}
	}
}

// BenchmarkTable2 regenerates the segv/msg/data reductions of Opt vs Base.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(harness.DefaultProcs, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MsgPct, r.App+"/"+string(r.Set)+"-msg%")
			}
		}
	}
}

// BenchmarkFig5 regenerates the four-system speedup comparison; one
// sub-benchmark per application and data set.
func BenchmarkFig5(b *testing.B) {
	for _, a := range apps.Registry() {
		for _, set := range []apps.DataSet{harness.Large, harness.Small} {
			a, set := a, set
			b.Run(fmt.Sprintf("%s/%s", a.Name, set), func(b *testing.B) {
				uni, err := harness.UniTime(a, set, model.SP2())
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					for _, sys := range []harness.SystemKind{harness.Base, harness.Opt, harness.XHPF, harness.PVMe} {
						if sys == harness.XHPF && !a.XHPF {
							continue
						}
						res, err := harness.Run(harness.Config{App: a, Set: set, System: sys, Procs: harness.DefaultProcs})
						if err != nil {
							b.Fatal(err)
						}
						if i == 0 {
							b.ReportMetric(harness.Speedup(uni, res.Time), string(sys)+"-speedup")
						}
					}
				}
			})
		}
	}
}

// BenchmarkFig6 regenerates the optimization-level sweep.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig6(harness.DefaultProcs, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Levels[4], r.App+"/"+string(r.Set)+"-best")
			}
		}
	}
}

// BenchmarkFig7 regenerates the synchronous vs asynchronous comparison.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig7(harness.DefaultProcs, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Async, r.App+"-async")
				b.ReportMetric(r.Sync, r.App+"-sync")
			}
		}
	}
}

// BenchmarkAblationProcs extends the evaluation beyond the paper's 8
// processors (its Section 6.4 conjectures Push grows more beneficial at
// larger counts): the optimized Jacobi at 2-16 processors.
func BenchmarkAblationProcs(b *testing.B) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	uni, err := harness.UniTime(a, harness.Large, model.SP2())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("procs-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Config{App: a, Set: harness.Large, System: harness.Opt, Procs: n})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(harness.Speedup(uni, res.Time), "speedup")
				}
			}
		})
	}
}

// BenchmarkAblationPushAtScale quantifies the Push-vs-barrier gain for
// Jacobi as the processor count grows (the design choice DESIGN.md calls
// out: barrier replacement matters when synchronization is the bottleneck).
func BenchmarkAblationPushAtScale(b *testing.B) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("procs-%d", n), func(b *testing.B) {
			prog := a.Build(n)
			params := prog.Prepare(a.Sets[harness.Small], n)
			levels := harness.Levels(a, n, params)
			for i := 0; i < b.N; i++ {
				noPush, err := harness.Run(harness.Config{App: a, Set: harness.Small, System: harness.Opt, Procs: n, Level: levels[3]})
				if err != nil {
					b.Fatal(err)
				}
				withPush, err := harness.Run(harness.Config{App: a, Set: harness.Small, System: harness.Opt, Procs: n, Level: levels[4]})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					gain := 100 * (1 - float64(withPush.Time)/float64(noPush.Time))
					b.ReportMetric(gain, "push-gain-%")
				}
			}
		})
	}
}
