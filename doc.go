// Package sdsm reproduces Dwarkadas, Cox, and Zwaenepoel, "An Integrated
// Compile-Time/Run-Time Software Distributed Shared Memory System"
// (ASPLOS VII, 1996) as a complete Go library: a TreadMarks-style
// lazy-release-consistency DSM run-time with the paper's augmented
// interface (Validate, Validate_w_sync, Push), the regular-section-based
// compiler that drives it, message-passing baselines, the six evaluation
// applications, and a harness regenerating every table and figure of the
// paper on a simulated 8-node IBM SP/2.
//
// Start with README.md for a tour, DESIGN.md for the system inventory and
// the substitution rules (what is simulated and why), and EXPERIMENTS.md
// for the reproduced evaluation next to the paper's numbers. The top-level
// benchmarks in bench_test.go regenerate the evaluation; the packages
// under internal/ implement the system; cmd/ and examples/ are the entry
// points.
package sdsm
